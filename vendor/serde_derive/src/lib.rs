//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim.
//!
//! Implemented without `syn`/`quote` (the build is fully offline): the input
//! token stream is parsed directly and the generated impl is assembled as a
//! string. Supported shapes — the only ones the workspace uses:
//!
//! * structs with named fields  → serialized as a JSON object
//! * fieldless enums            → serialized as the variant-name string
//!
//! Anything else produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a deriving type.
enum Input {
    /// Struct name + field names.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

/// Parse the derive input, skipping attributes, visibility, and doc comments.
fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;

    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute body group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let text = id.to_string();
                match text.as_str() {
                    "pub" => {
                        // Skip an optional restriction like `pub(crate)`.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => kind = Some(text),
                    _ if kind.is_some() && name.is_none() => name = Some(text),
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("generic types are not supported by the serde shim derive".into());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let kind = kind.ok_or("expected `struct` or `enum` before body")?;
                let name = name.ok_or("expected type name before body")?;
                return match kind.as_str() {
                    "struct" => Ok(Input::Struct(name, parse_named_fields(g.stream())?)),
                    _ => Ok(Input::Enum(name, parse_unit_variants(g.stream())?)),
                };
            }
            _ => {}
        }
    }
    Err("tuple structs and unit structs are not supported by the serde shim derive".into())
}

/// Extract field names from the body of a braced struct.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of the field name.
        let mut field: Option<String> = None;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(ref p) if p.as_char() == '#' => {}
                TokenTree::Group(ref g) if g.delimiter() == Delimiter::Bracket => {}
                TokenTree::Group(ref g) if g.delimiter() == Delimiter::Parenthesis => {}
                TokenTree::Ident(id) => {
                    let text = id.to_string();
                    if text != "pub" {
                        field = Some(text);
                        break;
                    }
                }
                other => {
                    return Err(format!("unexpected token `{other}` in struct body"));
                }
            }
        }
        let Some(field) = field else { break };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{field}`")),
        }
        fields.push(field);
        // Consume the type up to the next top-level comma. Generic angle
        // brackets contain no top-level commas as token trees? They do —
        // `<K, V>` commas are NOT inside a group, so track depth manually.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Extract variant names from the body of an enum, rejecting data variants.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    for tok in body {
        match tok {
            TokenTree::Punct(ref p) if p.as_char() == '#' || p.as_char() == ',' => {}
            TokenTree::Group(ref g) if g.delimiter() == Delimiter::Bracket => {}
            TokenTree::Ident(id) => variants.push(id.to_string()),
            TokenTree::Group(_) => {
                return Err("enum variants with data are not supported by the serde shim".into());
            }
            other => {
                return Err(format!("unexpected token `{other}` in enum body"));
            }
        }
    }
    Ok(variants)
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive `serde::Serialize` for named-field structs and fieldless enums.
///
/// Mirrors `serde_derive::derive_serialize(input: TokenStream) -> TokenStream`
/// (the `#[proc_macro_derive(Serialize)]` entry point).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let out = match parsed {
        Input::Struct(name, fields) => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "entries.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         let mut entries = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}

/// Derive `serde::Deserialize` for named-field structs and fieldless enums.
///
/// Mirrors `serde_derive::derive_deserialize(input: TokenStream) -> TokenStream`
/// (the `#[proc_macro_derive(Deserialize)]` entry point).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let out = match parsed {
        Input::Struct(name, fields) => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(value.get({f:?}).ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"missing field `\", {f:?}, \"`\")))?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if value.as_object().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 concat!(\"expected object for \", {name:?})));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let s = value.as_str().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected string for \", {name:?})))?;\n\
                         match s {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse().unwrap()
}
