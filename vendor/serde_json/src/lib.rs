//! Minimal, self-contained stand-in for `serde_json`, operating on the serde
//! shim's [`serde::Value`] tree.
//!
//! Floats are rendered with Rust's shortest-round-trip formatting (`{:?}`) and
//! parsed with `str::parse::<f64>`, so finite `f64` values survive a
//! serialize → parse round trip exactly. Non-finite floats serialize as
//! `null`, matching real `serde_json`.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to a compact JSON string.
///
/// Mirrors `serde_json::to_string<T: ?Sized + Serialize>(value: &T) -> Result<String>`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a human-readable, two-space-indented JSON string.
///
/// Mirrors `serde_json::to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String>`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
///
/// Mirrors `serde_json::from_str<T: DeserializeOwned>(s: &str) -> Result<T>`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(out, indent, depth, items, '[', ']', |item, out, depth| {
                write_value(item, out, indent, depth);
            })
        }
        Value::Object(entries) => {
            write_seq(
                out,
                indent,
                depth,
                entries,
                '{',
                '}',
                |(k, v), out, depth| {
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(v, out, indent, depth);
                },
            );
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    items: &[T],
    open: char,
    close: char,
    mut write_item: impl FnMut(&T, &mut String, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
        }
    }

    /// Parse the four hex digits following a `\u` escape introducer.
    fn parse_u_escape(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_u_escape()?;
                            // A high surrogate must be followed by `\u` + low
                            // surrogate; the pair combines into one scalar.
                            let scalar = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::custom("unpaired surrogate in \\u escape"));
                                }
                                self.pos += 2;
                                let low = self.parse_u_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::custom(
                                        "invalid low surrogate in \\u escape",
                                    ));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed.
                    let start = self.pos - 1;
                    let slice = &self.bytes[start..];
                    let len = utf8_len(b)?;
                    if slice.len() < len {
                        return Err(Error::custom("truncated utf-8 sequence"));
                    }
                    let s = std::str::from_utf8(&slice[..len])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, Error> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err(Error::custom("invalid utf-8 lead byte")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.0, -1.5, 1.0 / 3.0, 1e-12, 6.02e23, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "json was {json}");
        }
    }

    #[test]
    fn vectors_and_strings_round_trip() {
        let v = vec![1.25, -2.5, 3.75];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.25,-2.5,3.75]");
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let s = "quote \" backslash \\ newline \n unicode é".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // Escaped non-BMP characters (as real serde_json / json.dumps emit
        // them) arrive as UTF-16 surrogate pairs.
        let emoji: String = from_str("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(emoji, "\u{1F600}");
        let mixed: String = from_str("\"x\\u00E9\\uD834\\uDD1Ey\"").unwrap();
        assert_eq!(mixed, "x\u{E9}\u{1D11E}y");
        assert!(
            from_str::<String>(r#""\uD83D""#).is_err(),
            "lone high surrogate"
        );
        assert!(
            from_str::<String>(r#""\uD83Dz""#).is_err(),
            "high surrogate + literal"
        );
        assert!(
            from_str::<String>(r#""\uD83DA""#).is_err(),
            "high + non-low escape"
        );
        assert!(
            from_str::<String>(r#""\uDE00""#).is_err(),
            "lone low surrogate"
        );
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![1.0, 2.0];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<f64>>(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_stay_integers() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.5trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
